#include "timing/paths.hpp"

#include <algorithm>

#include "timing/sta.hpp"

namespace pts::timing {

using netlist::CellId;
using netlist::CellKind;
using netlist::NetId;

PathSet::PathSet(const netlist::Netlist& netlist, std::vector<TimingPath> paths)
    : paths_(std::move(paths)) {
  const std::size_t num_nets = netlist.num_nets();
  // Two-pass CSR build: count paths per net, prefix-sum, then fill in
  // ascending path order (matching the old per-net push_back order).
  net_path_offsets_.assign(num_nets + 1, 0);
  const_delay_.resize(paths_.size());
  for (std::uint32_t p = 0; p < paths_.size(); ++p) {
    PTS_CHECK(paths_[p].cells.size() == paths_[p].nets.size() + 1);
    const_delay_[p] = paths_[p].const_delay;
    for (NetId net : paths_[p].nets) {
      PTS_CHECK(net < num_nets);
      ++net_path_offsets_[net + 1];
    }
  }
  for (std::size_t n = 0; n < num_nets; ++n) {
    if (net_path_offsets_[n + 1] > 0) ++num_path_nets_;
    net_path_offsets_[n + 1] += net_path_offsets_[n];
  }
  net_paths_.resize(net_path_offsets_.back());
  std::vector<std::uint32_t> cursor(net_path_offsets_.begin(),
                                    net_path_offsets_.end() - 1);
  for (std::uint32_t p = 0; p < paths_.size(); ++p) {
    for (NetId net : paths_[p].nets) {
      // A path may not traverse the same net twice (paths are simple).
      PTS_DCHECK(cursor[net] == net_path_offsets_[net] ||
                 net_paths_[cursor[net] - 1] != p);
      net_paths_[cursor[net]++] = p;
    }
  }
}

std::shared_ptr<const PathSet> extract_critical_paths(
    const netlist::Netlist& netlist, std::size_t k, const DelayModel& model) {
  PTS_CHECK(k >= 1);
  // Uniform-delay STA gives arrival times and per-cell max-predecessors;
  // we re-derive the critical path *per primary output* by walking back
  // along max-arrival predecessors.
  const StaResult sta = run_sta_uniform(netlist, /*uniform_net_delay=*/1.0, model);

  struct Candidate {
    CellId po;
    double arrival;
  };
  std::vector<Candidate> pos;
  for (CellId cell : netlist.pad_cells()) {
    if (netlist.cell(cell).kind == CellKind::PrimaryOutput) {
      pos.push_back({cell, sta.arrival[cell]});
    }
  }
  PTS_CHECK_MSG(!pos.empty(), "netlist has no primary outputs");
  std::sort(pos.begin(), pos.end(), [](const Candidate& a, const Candidate& b) {
    return a.arrival > b.arrival;
  });
  if (pos.size() > k) pos.resize(k);

  std::vector<TimingPath> paths;
  paths.reserve(pos.size());
  for (const Candidate& candidate : pos) {
    TimingPath path;
    // Walk back from the PO choosing, at each cell, the input whose driver
    // has the maximal (arrival + wire) — i.e. the binding input under the
    // uniform model used for extraction.
    CellId walk = candidate.po;
    path.cells.push_back(walk);
    while (!netlist.cell(walk).in_nets.empty()) {
      NetId best_net = netlist::kNoNet;
      CellId best_driver = netlist::kNoCell;
      double best_arrival = -1.0;
      for (NetId net : netlist.cell(walk).in_nets) {
        const CellId driver = netlist.net(net).driver;
        if (sta.arrival[driver] > best_arrival) {
          best_arrival = sta.arrival[driver];
          best_net = net;
          best_driver = driver;
        }
      }
      path.nets.push_back(best_net);
      path.cells.push_back(best_driver);
      walk = best_driver;
    }
    std::reverse(path.cells.begin(), path.cells.end());
    std::reverse(path.nets.begin(), path.nets.end());
    path.const_delay = 0.0;
    for (CellId cell : path.cells) {
      path.const_delay += model.cell_delay(netlist, cell);
    }
    paths.push_back(std::move(path));
  }
  return std::make_shared<PathSet>(netlist, std::move(paths));
}

PathTimer::PathTimer(std::shared_ptr<const PathSet> paths,
                     const placement::HpwlState& hpwl, DelayModel model)
    : paths_(std::move(paths)), model_(model) {
  PTS_CHECK(paths_ != nullptr);
  const_delay_ = paths_->const_delays();
  peek_sum_.reserve(paths_->size());
  rebuild(hpwl);
}

PathTimer::PathTimer(const PathSet& paths, const placement::HpwlState& hpwl,
                     DelayModel model)
    // Aliasing constructor with an empty owner: non-owning by construction.
    : PathTimer(std::shared_ptr<const PathSet>(std::shared_ptr<void>(), &paths),
                hpwl, model) {}

void PathTimer::apply_net_change(NetId net, double old_hpwl, double new_hpwl) {
  for (std::uint32_t p : paths_->paths_of_net(net)) {
    wire_sum_[p] += new_hpwl - old_hpwl;
  }
}

double PathTimer::peek_delta(std::span<const placement::NetChange> changes) {
  peek_sum_.assign(wire_sum_.begin(), wire_sum_.end());
  for (const auto& change : changes) {
    for (std::uint32_t p : paths_->paths_of_net(change.net)) {
      peek_sum_[p] += change.new_hpwl - change.old_hpwl;
    }
  }
  // Same reduction as max_delay()/path_delay(), against the scratch sums.
  double best = 0.0;
  for (std::size_t p = 0; p < peek_sum_.size(); ++p) {
    best = std::max(best, const_delay_[p] + model_.wire_delay(peek_sum_[p]));
  }
  return best;
}

void PathTimer::peek_delta_batch(
    std::span<const placement::NetChange> all_changes,
    std::span<const std::uint32_t> offsets, std::span<double> out_delays) {
  PTS_DCHECK(offsets.size() == out_delays.size() + 1);
  for (std::size_t i = 0; i < out_delays.size(); ++i) {
    PTS_DCHECK(offsets[i] <= offsets[i + 1] &&
               offsets[i + 1] <= all_changes.size());
    out_delays[i] =
        peek_delta(all_changes.subspan(offsets[i], offsets[i + 1] - offsets[i]));
  }
}

void PathTimer::commit_peek() { wire_sum_.swap(peek_sum_); }

void PathTimer::rebuild(const placement::HpwlState& hpwl) {
  wire_sum_.assign(paths_->size(), 0.0);
  for (std::size_t p = 0; p < paths_->size(); ++p) {
    for (NetId net : paths_->path(p).nets) {
      wire_sum_[p] += hpwl.net_hpwl(net);
    }
  }
}

double PathTimer::max_delay() const {
  double best = 0.0;
  for (std::size_t p = 0; p < wire_sum_.size(); ++p) {
    best = std::max(best, path_delay(p));
  }
  return best;
}

}  // namespace pts::timing
