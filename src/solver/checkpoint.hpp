// Checkpoint/resume for the sequential tabu engine.
//
// solve_with_checkpoint() runs the exact "tabu" engine recipe (same setup,
// same RNG streams — a run whose stop conditions never fire is bit-identical
// to Solver::solve) and additionally captures a Checkpoint at the point the
// run stopped: the full engine state needed to continue the trajectory —
// slot permutation, the drift-carrying HPWL total and per-path wire sums,
// rebuild cadence, tabu list, long-term frequency memory, the search RNG
// stream (including the Marsaglia spare), best-so-far bookkeeping, and
// iteration counters — plus the partial traces accumulated so far.
//
// resume_from_checkpoint() rebuilds the engine over the same spec, restores
// that state, and finishes the run. The spliced result (traces, stats,
// best) is bit-identical to the uninterrupted same-seed run in every
// deterministic field; only wall-clock x values of best_vs_time and
// makespan differ, since those measure real time. Pinned by
// tests/solver_test.cpp and tests/property_test.cpp.
//
// Checkpoints serialize to JSON (encode/decode_checkpoint) for persistence
// across processes. u64 fields (seed, circuit hash, RNG state words) are
// hex strings because JSON numbers are doubles (exact only to 2^53);
// everything else uses the service JSON core's bit-exact double round-trip.
// decode_checkpoint() never aborts: malformed input returns an error
// string.
#pragma once

#include <cstdint>
#include <string>

#include "solver/solver.hpp"

namespace pts::solver {

struct Checkpoint {
  /// Only the sequential "tabu" engine is checkpointable.
  std::string engine = "tabu";
  std::uint64_t seed = 0;
  /// netlist::content_hash of the circuit the run was solving; resume
  /// refuses a checkpoint taken against different circuit content.
  std::uint64_t circuit_hash = 0;
  double initial_cost = 0.0;
  /// Engine seconds consumed before the checkpoint (offsets the resumed
  /// segment's best_vs_time x values and makespan).
  double elapsed_seconds = 0.0;

  cost::Evaluator::CheckpointState eval;
  tabu::TabuSearch::State search;

  /// Traces of the run up to the checkpoint; resume splices its own
  /// segment onto these.
  Series cost_trace;
  Series best_trace;
  Series best_vs_time;
};

struct CheckpointedSolve {
  SolveResult result;
  /// State at the moment the run returned — resumable if it stopped early,
  /// a no-op to resume if it completed.
  Checkpoint checkpoint;
};

/// Runs the "tabu" engine exactly as Solver::solve would (spec.engine must
/// be "tabu"; aborts on an invalid spec, like Solver::solve) and captures a
/// checkpoint at the stop point.
CheckpointedSolve solve_with_checkpoint(const SolveSpec& spec);

/// Empty string when `checkpoint` can resume under `spec` (same engine,
/// seed, circuit content, movable-cell count); otherwise the reason.
std::string check_resume_compatible(const SolveSpec& spec,
                                    const Checkpoint& checkpoint);

/// Restores `checkpoint` and finishes the run under `spec` (which must
/// satisfy check_resume_compatible — aborts otherwise). The returned
/// result covers the WHOLE run: traces spliced, cumulative stats, the
/// original initial cost.
CheckpointedSolve resume_from_checkpoint(const SolveSpec& spec,
                                         const Checkpoint& checkpoint);

/// Compact JSON serialization of a checkpoint (bit-exact round-trip).
std::string encode_checkpoint(const Checkpoint& checkpoint);

/// Parses encode_checkpoint output. Returns an empty string and fills
/// `out` on success, or a description of the first problem (never aborts,
/// whatever the input).
std::string decode_checkpoint(const std::string& text, Checkpoint* out);

}  // namespace pts::solver
