#include "service/session.hpp"

#include <atomic>
#include <mutex>
#include <utility>

namespace pts::service {

struct SessionManager::Session {
  std::uint64_t id = 0;
  std::uint64_t owner = 0;
  bool stream = false;
  std::uint64_t progress_stride = 0;
  CancelToken token;
  EventSink sink;
  solver::SolveSpec spec;
  std::thread thread;
  /// Set (release) as the session thread's last touch of this struct; the
  /// reaper reads it (acquire) and may join + destroy immediately after.
  std::atomic<bool> finished{false};
};

namespace {

/// Forwards engine progress into the session sink. Runs on the solve
/// thread (Observer contract: callbacks are synchronous and read-only
/// towards the engine).
class StreamObserver final : public Observer {
 public:
  StreamObserver(std::uint64_t session, bool stream, std::uint64_t stride,
                 const EventSink& sink)
      : session_(session), stream_(stream), stride_(stride), sink_(sink) {}

  void on_improvement(const Progress& progress) override {
    if (!stream_) return;
    emit(true, progress);
  }

  void on_iteration(const Progress& progress) override {
    if (!stream_ || stride_ == 0) return;
    if (++ticks_ % stride_ != 0) return;
    emit(false, progress);
  }

 private:
  void emit(bool improvement, const Progress& progress) {
    SessionEvent event;
    event.kind = SessionEvent::Kind::Progress;
    event.session = session_;
    event.improvement = improvement;
    event.progress = progress;
    sink_(std::move(event));
  }

  std::uint64_t session_;
  bool stream_;
  std::uint64_t stride_;
  const EventSink& sink_;
  std::uint64_t ticks_ = 0;
};

}  // namespace

SessionManager::SessionManager(Options options) : options_(options) {}

SessionManager::~SessionManager() { drain(); }

std::uint64_t SessionManager::start(solver::SolveSpec spec, std::uint64_t owner,
                                    bool stream, std::uint64_t progress_stride,
                                    EventSink sink) {
  auto session = std::make_unique<Session>();
  session->owner = owner;
  session->stream = stream;
  session->progress_stride = progress_stride;
  session->sink = std::move(sink);
  session->spec = std::move(spec);
  session->spec.stop.cancel = &session->token;

  // Publication and spawn happen under one lock so every joiner (reap,
  // cancel_owned, drain — all of which lock mutex_ before extracting a
  // session) observes the thread member already assigned; a session can
  // never be destroyed with its thread running. run_session only takes
  // mutex_ at its very end, so spawning under the lock cannot deadlock.
  const std::lock_guard<std::mutex> lock(mutex_);
  reap_locked();
  if (draining_) return 0;
  std::size_t running = 0;
  for (const auto& s : sessions_) {
    if (!s->finished.load(std::memory_order_acquire)) ++running;
  }
  if (running >= options_.max_sessions) return 0;
  session->id = next_id_++;
  ++started_;

  Session* raw = session.get();
  sessions_.push_back(std::move(session));
  raw->thread = std::thread([this, raw] { run_session(raw); });
  return raw->id;
}

void SessionManager::run_session(Session* session) {
  StreamObserver observer(session->id, session->stream, session->progress_stride,
                          session->sink);
  session->spec.observer = &observer;

  solver::SolveResult result = solver::Solver().solve(session->spec);

  SessionEvent done;
  done.kind = SessionEvent::Kind::Done;
  done.session = session->id;
  done.result = std::move(result);
  session->sink(std::move(done));

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++finished_count_;
  }
  // Last touch: after this store the reaper may destroy *session.
  session->finished.store(true, std::memory_order_release);
}

void SessionManager::reap_locked() {
  auto it = sessions_.begin();
  while (it != sessions_.end()) {
    Session& session = **it;
    if (session.finished.load(std::memory_order_acquire)) {
      if (session.thread.joinable()) session.thread.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

bool SessionManager::cancel(std::uint64_t session_id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& session : sessions_) {
    if (session->id != session_id) continue;
    if (session->finished.load(std::memory_order_acquire)) return false;
    session->token.cancel();
    return true;
  }
  return false;
}

void SessionManager::cancel_owned(std::uint64_t owner) {
  std::vector<std::unique_ptr<Session>> owned;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.begin();
    while (it != sessions_.end()) {
      if ((*it)->owner == owner) {
        (*it)->token.cancel();
        owned.push_back(std::move(*it));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Join outside the lock: the session threads may be mid-sink (which can
  // block on a slow socket) and must not stall unrelated submissions.
  for (auto& session : owned) {
    if (session->thread.joinable()) session->thread.join();
  }
}

void SessionManager::drain() {
  std::vector<std::unique_ptr<Session>> all;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    for (auto& session : sessions_) session->token.cancel();
    all.swap(sessions_);
  }
  for (auto& session : all) {
    if (session->thread.joinable()) session->thread.join();
  }
}

std::size_t SessionManager::active_sessions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t running = 0;
  for (const auto& session : sessions_) {
    if (!session->finished.load(std::memory_order_acquire)) ++running;
  }
  return running;
}

std::uint64_t SessionManager::sessions_started() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return started_;
}

std::uint64_t SessionManager::sessions_finished() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return finished_count_;
}

}  // namespace pts::service
