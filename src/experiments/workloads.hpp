// Shared experiment workloads and configurations.
//
// Every figure bench pulls its circuits and base parameters from here so
// the whole evaluation is consistent: same seeded circuits, same tabu
// parameters, iteration budgets scaled to circuit size the way the paper's
// fixed "algorithm parameters" were. `quick` shrinks budgets (used by the
// default bench invocation so the full suite stays in CI-friendly time;
// pass --full to the bench binaries for larger runs).
//
// All runs go through the pts::solver::Solver front door (run_sim,
// base_spec); base_config survives for callers that tune the raw parallel
// knobs before building a spec from them.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "netlist/benchmarks.hpp"
#include "parallel/config.hpp"
#include "solver/solver.hpp"

namespace pts::experiments {

/// Cached benchmark circuit (generated once per process).
const netlist::Netlist& circuit(std::string_view name);

/// Circuit names in the paper's size order.
std::vector<std::string> circuit_names();

/// Scale-tier circuit names (scale10k/scale50k/scale200k), smallest first —
/// the workloads behind the `stress` CTest tier and the macro_scale bench.
std::vector<std::string> scale_circuit_names();

/// Base configuration for a circuit: paper defaults (4 TSWs, 1 CLW,
/// half-force policy on the 12-machine cluster) with iteration budgets
/// scaled to circuit size. Above the paper's largest circuit, tabu tenure
/// and candidate width additionally scale with ~sqrt(movable cells) —
/// the paper's small-circuit constants starve the search at 10k+ gates
/// (paper-sized circuits keep the exact paper constants).
parallel::PtsConfig base_config(const netlist::Netlist& netlist,
                                std::uint64_t seed = 1, bool quick = true);

/// A validated front-door spec built from base_config: the shared
/// seed/cost/tabu blocks are lifted out of the parallel config so the same
/// spec runs any registered engine.
solver::SolveSpec base_spec(const netlist::Netlist& netlist,
                            std::string_view engine, std::uint64_t seed = 1,
                            bool quick = true);

/// Runs the "parallel-sim" engine once through the Solver front door;
/// bit-identical to a direct SimEngine run of `config`.
solver::SolveResult run_sim(const netlist::Netlist& netlist,
                            const parallel::PtsConfig& config);

/// Quality threshold "x" for speedup measurements: the cost after
/// `fraction` of the baseline run's total improvement.
double improvement_threshold(const solver::SolveResult& baseline,
                             double fraction);

}  // namespace pts::experiments
