// Simulated-annealing placer (memoryless comparator).
//
// The paper's introduction contrasts tabu search with memoryless iterative
// heuristics — simulated annealing chief among them (Casotto et al. for
// parallel SA placement). This baseline runs Metropolis-accepted swaps
// under a geometric cooling schedule on the same Evaluator/cost model, so
// examples and benches can compare TS and SA per unit of work.
#pragma once

#include "cost/evaluator.hpp"
#include "support/rng.hpp"
#include "support/run_control.hpp"
#include "support/stats.hpp"

namespace pts::baselines {

struct AnnealParams {
  /// Initial acceptance target used to auto-tune T0 (fraction of uphill
  /// moves accepted at the start).
  double initial_acceptance = 0.85;
  double cooling = 0.92;          ///< geometric factor per temperature step
  std::size_t moves_per_temp = 0; ///< 0 = 10 * movable cells
  double final_temp_ratio = 1e-3; ///< stop when T < T0 * ratio
  std::size_t trace_stride = 1;
};

struct AnnealResult {
  double best_cost = 0.0;
  double best_quality = 0.0;
  std::vector<netlist::CellId> best_slots;
  Series best_trace;  ///< best cost per temperature step
  /// Best-so-far vs wall seconds; starts at (0, initial cost), one point
  /// per improvement — the same shape TabuSearch records, so time-to-cost
  /// reporting (macro_scale's tt50) works for SA too. The y values are
  /// deterministic for a fixed seed; the x values are wall-clock.
  Series best_vs_time;
  std::size_t moves_tried = 0;
  std::size_t moves_accepted = 0;
  /// Completed unless a caller-supplied stop condition fired first.
  StopReason stop_reason = StopReason::Completed;
};

/// Runs SA on the evaluator's current solution (mutates it). Stop
/// conditions are checked before every move (`max_iterations` caps
/// `moves_tried`); the observer sees improvements per accepted new best
/// and iterations per temperature step. Checks and callbacks are
/// read-only: a run whose conditions never fire is bit-identical to an
/// uncontrolled one.
AnnealResult anneal(cost::Evaluator& eval, const AnnealParams& params, Rng& rng,
                    const RunControl& control = {});

}  // namespace pts::baselines
