#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace pts {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& tag, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed) || message.empty()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  if (tag.empty()) {
    std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
  } else {
    std::fprintf(stderr, "[%s] (%s) %s\n", level_name(level), tag.c_str(),
                 message.c_str());
  }
}

}  // namespace pts
