#include "placement/svg.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace pts::placement {
namespace {

std::string color_for(double intensity) {
  // Light gray (0) -> red (1).
  const double t = std::clamp(intensity, 0.0, 1.0);
  const int r = static_cast<int>(220 + 35 * t);
  const int g = static_cast<int>(220 * (1.0 - t));
  const int b = static_cast<int>(220 * (1.0 - t));
  char buf[16];
  std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", r, g, b);
  return buf;
}

}  // namespace

std::string render_svg(const Placement& placement, const HpwlState& hpwl,
                       const SvgOptions& options) {
  const auto& netlist = placement.netlist();
  const auto& layout = placement.layout();
  const double s = options.scale;
  PTS_CHECK(s > 0.0);

  const double margin = 4.0;  // layout units around the core (pads live here)
  const double width = (layout.nominal_width() + 2 * margin) * s;
  const double height = (layout.core_height() + 2 * margin) * s;
  auto px = [&](double x) { return (x + margin) * s; };
  auto py = [&](double y) { return height - (y + margin) * s; };  // y up

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
     << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << ' ' << height
     << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  if (!options.title.empty()) {
    os << "<text x=\"6\" y=\"14\" font-family=\"monospace\" font-size=\"12\">"
       << options.title << "</text>\n";
  }

  // Row outlines.
  for (std::size_t row = 0; row < layout.num_rows(); ++row) {
    const double y = layout.row_y(row);
    os << "<rect x=\"" << px(0.0) << "\" y=\"" << py(y + 0.45) << "\" width=\""
       << layout.nominal_width() * s << "\" height=\"" << 0.9 * s
       << "\" fill=\"none\" stroke=\"#cccccc\" stroke-width=\"0.5\"/>\n";
  }

  // Flylines of the longest nets (under the cells).
  if (options.flylines > 0) {
    std::vector<netlist::NetId> nets(netlist.num_nets());
    for (netlist::NetId n = 0; n < nets.size(); ++n) nets[n] = n;
    std::sort(nets.begin(), nets.end(), [&](netlist::NetId a, netlist::NetId b) {
      return hpwl.net_hpwl(a) > hpwl.net_hpwl(b);
    });
    nets.resize(std::min<std::size_t>(options.flylines, nets.size()));
    for (netlist::NetId net : nets) {
      const auto& n = netlist.net(net);
      const Point d = placement.position(n.driver);
      for (netlist::CellId sink : n.sinks) {
        const Point q = placement.position(sink);
        os << "<line x1=\"" << px(d.x) << "\" y1=\"" << py(d.y) << "\" x2=\""
           << px(q.x) << "\" y2=\"" << py(q.y)
           << "\" stroke=\"#88aaff\" stroke-width=\"0.6\" opacity=\"0.6\"/>\n";
      }
    }
  }

  // Movable cells.
  for (netlist::CellId cell : netlist.movable_cells()) {
    const Point p = placement.position(cell);
    const double w = static_cast<double>(netlist.cell(cell).width);
    const double intensity = cell < options.cell_intensity.size()
                                 ? options.cell_intensity[cell]
                                 : 0.0;
    os << "<rect x=\"" << px(p.x - w / 2) << "\" y=\"" << py(p.y + 0.4)
       << "\" width=\"" << w * s << "\" height=\"" << 0.8 * s << "\" fill=\""
       << color_for(intensity)
       << "\" stroke=\"#555555\" stroke-width=\"0.4\"/>\n";
  }

  // Pads as triangles (PI) and squares (PO).
  for (netlist::CellId pad : netlist.pad_cells()) {
    const Point p = placement.position(pad);
    if (netlist.cell(pad).kind == netlist::CellKind::PrimaryInput) {
      os << "<polygon points=\"" << px(p.x - 0.4) << ',' << py(p.y - 0.4) << ' '
         << px(p.x - 0.4) << ',' << py(p.y + 0.4) << ' ' << px(p.x + 0.4) << ','
         << py(p.y) << "\" fill=\"#44aa44\"/>\n";
    } else {
      os << "<rect x=\"" << px(p.x - 0.35) << "\" y=\"" << py(p.y + 0.35)
         << "\" width=\"" << 0.7 * s << "\" height=\"" << 0.7 * s
         << "\" fill=\"#aa8844\"/>\n";
    }
  }

  os << "</svg>\n";
  return os.str();
}

void save_svg(const Placement& placement, const HpwlState& hpwl,
              const std::string& path, const SvgOptions& options) {
  std::ofstream out(path);
  PTS_CHECK_MSG(out.good(), "cannot open SVG output file");
  out << render_svg(placement, hpwl, options);
}

}  // namespace pts::placement
