// Move primitives for placement tabu search.
//
// A move swaps the slots of two movable cells. Tabu attributes are the
// normalized cell pair (order-independent) or, optionally, the individual
// cells. A compound move (paper §3) is a short sequence of swaps built
// greedily level by level.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace pts::tabu {

struct Move {
  netlist::CellId a = netlist::kNoCell;
  netlist::CellId b = netlist::kNoCell;

  /// Order-independent identity: (min, max).
  Move normalized() const { return a <= b ? Move{a, b} : Move{b, a}; }

  bool operator==(const Move& other) const {
    const Move x = normalized();
    const Move y = other.normalized();
    return x.a == y.a && x.b == y.b;
  }

  /// Stable 64-bit key of the normalized pair.
  std::uint64_t key() const {
    const Move n = normalized();
    return (static_cast<std::uint64_t>(n.a) << 32) | n.b;
  }
};

/// A compound move: the swap sequence applied and the cost it reached.
struct CompoundMove {
  std::vector<Move> swaps;
  double cost = 0.0;
  /// True if the early-accept rule fired (cost improved before max depth).
  bool improved_early = false;

  bool empty() const { return swaps.empty(); }
};

}  // namespace pts::tabu
