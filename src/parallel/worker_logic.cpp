#include "parallel/worker_logic.hpp"

#include <algorithm>

namespace pts::parallel {

using tabu::CompoundMove;
using tabu::Move;

ClwSearch::ClwSearch(tabu::CellRange range, tabu::CompoundParams params)
    : range_(range), params_(params) {
  PTS_CHECK(params_.width >= 1);
  PTS_CHECK(params_.depth >= 1);
}

void ClwSearch::begin(cost::Evaluator& eval, Rng& rng) {
  eval_ = &eval;
  rng_ = &rng;
  movable_ = eval.placement().netlist().movable_cells();
  start_cost_ = eval.cost();
  current_cost_ = start_cost_;
  steps_ = 0;
  level_ = 0;
  trial_in_level_ = 0;
  have_level_best_ = false;
  applied_.clear();
  improved_early_ = false;
  done_ = false;
  abandoned_ = false;
  best_prefixes_.clear();
}

void ClwSearch::step() {
  PTS_CHECK(!done_);
  PTS_CHECK(eval_ != nullptr && rng_ != nullptr);

  // One trial: sample and probe (no mutate-and-undo; the probe leaves the
  // evaluator untouched, so a trial costs one incremental pass).
  const Move move = tabu::sample_move(movable_, range_, *rng_);
  const double cost_after = eval_->probe_swap(move.a, move.b);
  if (!have_level_best_ || cost_after < level_best_cost_) {
    level_best_ = move;
    level_best_cost_ = cost_after;
    have_level_best_ = true;
  }
  ++steps_;
  ++trial_in_level_;

  if (trial_in_level_ < params_.width) return;

  // Level complete: promote the level's best swap permanently (reusing the
  // pending probe when the winner was the trial probed last).
  current_cost_ = eval_->commit_swap(level_best_.a, level_best_.b);
  applied_.push_back(level_best_);
  if (best_prefixes_.empty() || current_cost_ < best_prefixes_.back().cost) {
    best_prefixes_.push_back({steps_, applied_.size(), current_cost_});
  }
  ++level_;
  trial_in_level_ = 0;
  have_level_best_ = false;

  if (current_cost_ < start_cost_ && params_.early_accept) {
    improved_early_ = true;
    done_ = true;
  } else if (level_ >= params_.depth) {
    done_ = true;
  }
}

CompoundMove ClwSearch::result() const {
  if (done_) {
    CompoundMove full;
    full.swaps = applied_;
    full.cost = current_cost_;
    full.improved_early = improved_early_;
    return full;
  }
  return result_at_step(steps_);
}

CompoundMove ClwSearch::result_at_step(std::size_t steps) const {
  PTS_CHECK(steps <= steps_);
  CompoundMove best;
  best.cost = start_cost_;
  for (const auto& snapshot : best_prefixes_) {
    if (snapshot.step > steps) break;
    if (snapshot.cost < best.cost) {
      best.swaps.assign(applied_.begin(),
                        applied_.begin() + static_cast<std::ptrdiff_t>(snapshot.len));
      best.cost = snapshot.cost;
    }
  }
  return best;
}

void ClwSearch::abandon() {
  PTS_CHECK(eval_ != nullptr);
  PTS_CHECK_MSG(!abandoned_, "abandon() called twice without begin()");
  for (auto it = applied_.rbegin(); it != applied_.rend(); ++it) {
    eval_->apply_swap(it->a, it->b);
  }
  abandoned_ = true;
  done_ = true;
}

TswState::TswState(cost::Evaluator& eval, const tabu::TabuParams& tabu_params,
                   const tabu::DiversifyParams& diversify_params,
                   tabu::CellRange diversify_range, Rng rng)
    : eval_(&eval),
      tabu_params_(tabu_params),
      diversify_params_(diversify_params),
      diversify_range_(diversify_range),
      rng_(rng),
      list_(tabu_params.tenure, tabu_params.attribute),
      iter_best_cost_(eval.cost()),
      iter_best_slots_(eval.placement().slots()) {
  diversify_scratch_.reserve(diversify_params_.depth);
}

void TswState::begin_global_iteration() {
  iter_best_cost_ = eval_->cost();
  iter_best_slots_ = eval_->placement().slots();
  improved_since_snapshot_ = false;
  snapshots_.clear();
}

std::size_t TswState::apply_diversification() {
  tabu::diversify(*eval_, diversify_range_, diversify_params_, rng_,
                  &diversify_scratch_);
  // Diversification may improve the iteration best by accident; track it so
  // reports stay consistent with the evaluator state.
  const double cost = eval_->cost();
  if (cost < iter_best_cost_) {
    iter_best_cost_ = cost;
    iter_best_slots_ = eval_->placement().slots();
    improved_since_snapshot_ = true;
  }
  // Work units: each diversification move trialled `width` candidate swaps.
  return diversify_scratch_.size() * diversify_params_.width;
}

int TswState::process_candidates(const std::vector<CompoundMove>& candidates) {
  ++stats_.iterations;
  last_applied_.clear();

  int best_index = -1;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].empty()) continue;
    if (best_index < 0 ||
        candidates[i].cost < candidates[static_cast<std::size_t>(best_index)].cost) {
      best_index = static_cast<int>(i);
    }
  }
  if (best_index < 0) return -1;  // all CLWs were cut before any level completed

  const CompoundMove& winner = candidates[static_cast<std::size_t>(best_index)];
  if (winner.improved_early) ++stats_.early_accepts;

  if (tabu::compound_is_tabu(list_, winner)) {
    const bool aspirated =
        tabu_params_.aspiration && winner.cost < iter_best_cost_;
    if (!aspirated) {
      ++stats_.rejected_tabu;
      return -1;
    }
    ++stats_.aspirated;
  }

  for (const Move& swap : winner.swaps) {
    eval_->apply_swap(swap.a, swap.b);
  }
  tabu::record_compound(list_, winner);
  ++stats_.accepted;
  last_applied_ = winner.swaps;

  const double cost = eval_->cost();
  if (cost < iter_best_cost_) {
    iter_best_cost_ = cost;
    iter_best_slots_ = eval_->placement().slots();
    improved_since_snapshot_ = true;
  }
  return best_index;
}

void TswState::end_local_iteration(double now) {
  if (!improved_since_snapshot_) return;
  snapshots_.push_back({now, iter_best_cost_, iter_best_slots_});
  improved_since_snapshot_ = false;
}

void TswState::adopt(const std::vector<netlist::CellId>& slots,
                     const std::vector<Move>& tabu_entries) {
  eval_->reset_placement(slots);
  if (!tabu_entries.empty()) list_.assign(tabu_entries);
}

const TswState::BestSnapshot* TswState::snapshot_at(double cutoff) const {
  const BestSnapshot* best = nullptr;
  for (const auto& snapshot : snapshots_) {
    if (snapshot.time > cutoff) break;
    best = &snapshot;
  }
  return best;
}

}  // namespace pts::parallel
